// Command benchguard is the CI benchmark-regression gate: it parses
// `go test -bench BenchmarkPolicy` output, compares each benchmark's
// MB/s (simulated instructions per second) against the committed
// BENCH_core.json reference, and exits nonzero when any benchmark
// regresses past the tolerance band (default 15%).
//
//	go test -run xxx -bench BenchmarkPolicy -benchtime 3x . | \
//	    go run ./cmd/benchguard -baseline BENCH_core.json -out BENCH_guard.ci.json
//
// The reference was captured on one specific machine, so raw MB/s on a
// different (or noisy, or faster) runner would gate on hardware, not
// code. With -normalize (the default) the guard first estimates the
// machine-speed ratio as the median of new/baseline across all
// benchmarks, divides it out, and applies the tolerance band to the
// residual — a uniform slowdown (different CPU) passes, while one
// benchmark regressing relative to its peers fails. -normalize=false
// compares raw MB/s for same-machine A/B runs.
//
// sim-IPC is compared too, with a much tighter band (0.1%): throughput
// may wobble with the hardware, but the reproduced microarchitectural
// IPC is deterministic and must not move at all.
//
// -mode sweep gates the sweep-level batched-execution win instead: it
// parses the points/s metric from the BenchmarkSweep* pairs, computes
// the batch/scalar ratio per pair named in BENCH_sweep.json, and fails
// when a ratio drops below that pair's min_ratio. Both sides of each
// ratio run on the same host in the same `go test` process, so the
// gate is machine-independent and needs no normalization:
//
//	go test -run xxx -bench BenchmarkSweep -benchtime 2x ./internal/sweep | \
//	    go run ./cmd/benchguard -mode sweep -baseline BENCH_sweep.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baselineEntry mirrors one benchmark in BENCH_core.json, whose
// committed form records a before/after pair per optimization PR; the
// "after" numbers are the current reference.
type baselineEntry struct {
	After struct {
		NsOp   float64 `json:"ns_op"`
		MBs    float64 `json:"mb_s"`
		SimIPC float64 `json:"sim_ipc"`
	} `json:"after"`
}

type baselineFile struct {
	CPU        string                   `json:"cpu"`
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// benchResult is one parsed `go test -bench` line.
type benchResult struct {
	NsOp   float64 `json:"ns_op"`
	MBs    float64 `json:"mb_s"`
	SimIPC float64 `json:"sim_ipc"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.e+]+) ns/op\s+([\d.e+]+) MB/s\s+([\d.e+]+) sim-IPC`)

// parseBench extracts BenchmarkPolicy* results from `go test -bench`
// output. Repeated runs of one benchmark keep the best MB/s (the
// standard way to shed scheduler noise).
func parseBench(out []byte) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(out), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r benchResult
		var err error
		if r.NsOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		if r.MBs, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("bad MB/s in %q: %v", line, err)
		}
		if r.SimIPC, err = strconv.ParseFloat(m[4], 64); err != nil {
			return nil, fmt.Errorf("bad sim-IPC in %q: %v", line, err)
		}
		if prev, ok := results[m[1]]; !ok || r.MBs > prev.MBs {
			results[m[1]] = r
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines with MB/s and sim-IPC found")
	}
	return results, nil
}

// sweepPair mirrors one scalar/batch benchmark pair in
// BENCH_sweep.json. The recorded points/s are documentation (captured
// on one reference machine); only min_ratio gates.
type sweepPair struct {
	Scalar   string  `json:"scalar"`
	Batch    string  `json:"batch"`
	MinRatio float64 `json:"min_ratio"`
}

type sweepBaselineFile struct {
	Pairs map[string]sweepPair `json:"pairs"`
}

var sweepLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.e+]+) ns/op\s+([\d.e+]+) points/s`)

// parseSweepBench extracts points/s results from `go test -bench`
// output. Repeated runs keep the best points/s per benchmark.
func parseSweepBench(out []byte) (map[string]float64, error) {
	results := make(map[string]float64)
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(out), -1) {
		m := sweepLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad points/s in %q: %v", line, err)
		}
		if v > results[m[1]] {
			results[m[1]] = v
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines with points/s found")
	}
	return results, nil
}

// sweepVerdict is one pair's comparison outcome.
type sweepVerdict struct {
	ScalarPointsS  float64  `json:"scalar_points_s"`
	BatchPointsS   float64  `json:"batch_points_s"`
	Ratio          float64  `json:"ratio"`
	MinRatio       float64  `json:"min_ratio"`
	Pass           bool     `json:"pass"`
	FailureReasons []string `json:"failure_reasons,omitempty"`
}

type sweepReport struct {
	Pass  bool                    `json:"pass"`
	Pairs map[string]sweepVerdict `json:"pairs"`
}

// compareSweep applies each pair's ratio floor. A missing benchmark
// fails the pair — deleting the scalar side would otherwise delete the
// gate.
func compareSweep(base map[string]sweepPair, run map[string]float64) sweepReport {
	rep := sweepReport{Pass: true, Pairs: make(map[string]sweepVerdict)}
	for name, p := range base {
		v := sweepVerdict{MinRatio: p.MinRatio, Pass: true}
		var ok bool
		if v.ScalarPointsS, ok = run[p.Scalar]; !ok {
			v.Pass = false
			v.FailureReasons = append(v.FailureReasons, p.Scalar+" missing from this run")
		}
		if v.BatchPointsS, ok = run[p.Batch]; !ok {
			v.Pass = false
			v.FailureReasons = append(v.FailureReasons, p.Batch+" missing from this run")
		}
		if v.Pass {
			v.Ratio = v.BatchPointsS / v.ScalarPointsS
			if v.Ratio < p.MinRatio {
				v.Pass = false
				v.FailureReasons = append(v.FailureReasons, fmt.Sprintf(
					"batch/scalar ratio %.2f below the %.2f floor (%.2f vs %.2f points/s)",
					v.Ratio, p.MinRatio, v.BatchPointsS, v.ScalarPointsS))
			}
		}
		if !v.Pass {
			rep.Pass = false
		}
		rep.Pairs[name] = v
	}
	return rep
}

// runSweepMode is the -mode sweep entry point.
func runSweepMode(baselineBlob, benchOut []byte, outPath string) {
	var base sweepBaselineFile
	if err := json.Unmarshal(baselineBlob, &base); err != nil {
		log.Fatalf("parse sweep baseline: %v", err)
	}
	if len(base.Pairs) == 0 {
		log.Fatal("sweep baseline holds no pairs")
	}
	run, err := parseSweepBench(benchOut)
	if err != nil {
		log.Fatal(err)
	}
	rep := compareSweep(base.Pairs, run)
	if outPath != "" {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	names := make([]string, 0, len(rep.Pairs))
	for name := range rep.Pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := rep.Pairs[name]
		status := "ok"
		if !v.Pass {
			status = "FAIL"
		}
		log.Printf("%-12s batch %8.1f points/s / scalar %7.2f points/s = %.2fx (floor %.2fx)  %s",
			name, v.BatchPointsS, v.ScalarPointsS, v.Ratio, v.MinRatio, status)
		for _, r := range v.FailureReasons {
			log.Printf("  ↳ %s", r)
		}
	}
	if !rep.Pass {
		log.Fatal("sweep batch speedup below its floor")
	}
	log.Printf("all pairs above their ratio floors")
}

// verdict is one benchmark's comparison outcome.
type verdict struct {
	benchResult
	BaselineMBs    float64  `json:"baseline_mb_s"`
	BaselineIPC    float64  `json:"baseline_sim_ipc"`
	NormalizedMBs  float64  `json:"normalized_mb_s"`
	Ratio          float64  `json:"ratio"` // new/baseline before normalization
	Pass           bool     `json:"pass"`
	FailureReasons []string `json:"failure_reasons,omitempty"`
}

type report struct {
	Tolerance    float64            `json:"tolerance"`
	IPCTolerance float64            `json:"ipc_tolerance"`
	Normalize    bool               `json:"normalize"`
	SpeedRatio   float64            `json:"machine_speed_ratio"` // median new/baseline
	Pass         bool               `json:"pass"`
	Benchmarks   map[string]verdict `json:"benchmarks"`
	Missing      []string           `json:"missing,omitempty"` // in baseline, absent from the run
}

// compare applies the tolerance bands. Baseline entries missing from
// the run fail the gate outright — a silently shrinking benchmark
// suite would otherwise hollow the guard out one deletion at a time.
// (Renaming a benchmark legitimately means updating BENCH_core.json in
// the same change.)
func compare(base map[string]baselineEntry, run map[string]benchResult,
	tolerance, ipcTolerance float64, normalize bool) report {
	rep := report{Tolerance: tolerance, IPCTolerance: ipcTolerance,
		Normalize: normalize, SpeedRatio: 1, Pass: true,
		Benchmarks: make(map[string]verdict)}

	var ratios []float64
	for name, b := range base {
		if r, ok := run[name]; ok && b.After.MBs > 0 {
			ratios = append(ratios, r.MBs/b.After.MBs)
		} else if !ok {
			rep.Missing = append(rep.Missing, name)
		}
	}
	sort.Strings(rep.Missing)
	if len(rep.Missing) > 0 {
		rep.Pass = false
	}
	if len(ratios) == 0 {
		rep.Pass = false
		return rep
	}
	if normalize {
		sort.Float64s(ratios)
		mid := len(ratios) / 2
		if len(ratios)%2 == 1 {
			rep.SpeedRatio = ratios[mid]
		} else {
			rep.SpeedRatio = (ratios[mid-1] + ratios[mid]) / 2
		}
	}

	for name, b := range base {
		r, ok := run[name]
		if !ok || b.After.MBs <= 0 {
			continue
		}
		v := verdict{benchResult: r, BaselineMBs: b.After.MBs, BaselineIPC: b.After.SimIPC,
			Ratio: r.MBs / b.After.MBs, NormalizedMBs: r.MBs / rep.SpeedRatio, Pass: true}
		if v.NormalizedMBs < b.After.MBs*(1-tolerance) {
			v.Pass = false
			v.FailureReasons = append(v.FailureReasons, fmt.Sprintf(
				"throughput regression: %.2f MB/s (%.2f machine-normalized) vs baseline %.2f, below the %.0f%% band",
				r.MBs, v.NormalizedMBs, b.After.MBs, 100*tolerance))
		}
		if b.After.SimIPC > 0 && math.Abs(r.SimIPC-b.After.SimIPC)/b.After.SimIPC > ipcTolerance {
			v.Pass = false
			v.FailureReasons = append(v.FailureReasons, fmt.Sprintf(
				"sim-IPC drift: %.4f vs pinned %.4f — the simulator's results moved, not just its speed",
				r.SimIPC, b.After.SimIPC))
		}
		if !v.Pass {
			rep.Pass = false
		}
		rep.Benchmarks[name] = v
	}
	return rep
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		mode         = flag.String("mode", "core", "core: per-core MB/s + sim-IPC gate; sweep: batch/scalar points/s ratio gate")
		baselinePath = flag.String("baseline", "BENCH_core.json", "committed reference numbers")
		benchPath    = flag.String("bench", "-", "go test -bench output file (- = stdin)")
		tolerance    = flag.Float64("tolerance", 0.15, "allowed relative MB/s regression")
		ipcTol       = flag.Float64("ipc-tolerance", 0.001, "allowed relative sim-IPC drift")
		normalize    = flag.Bool("normalize", true, "divide out the median machine-speed ratio before gating")
		outPath      = flag.String("out", "", "write the comparison report JSON here")
	)
	flag.Parse()

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}

	if *mode == "sweep" {
		var out []byte
		if *benchPath == "-" {
			out, err = io.ReadAll(os.Stdin)
		} else {
			out, err = os.ReadFile(*benchPath)
		}
		if err != nil {
			log.Fatal(err)
		}
		runSweepMode(blob, out, *outPath)
		return
	}
	if *mode != "core" {
		log.Fatalf("unknown -mode %q (want core or sweep)", *mode)
	}

	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		log.Fatalf("parse %s: %v", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		log.Fatalf("%s holds no benchmarks", *baselinePath)
	}

	var out []byte
	if *benchPath == "-" {
		out, err = io.ReadAll(os.Stdin)
	} else {
		out, err = os.ReadFile(*benchPath)
	}
	if err != nil {
		log.Fatal(err)
	}
	run, err := parseBench(out)
	if err != nil {
		log.Fatal(err)
	}

	rep := compare(base.Benchmarks, run, *tolerance, *ipcTol, *normalize)
	if *outPath != "" {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := rep.Benchmarks[name]
		status := "ok"
		if !v.Pass {
			status = "FAIL"
		}
		log.Printf("%-32s %7.2f MB/s (norm %6.2f, base %6.2f, ratio %.2f) sim-IPC %.4f  %s",
			name, v.MBs, v.NormalizedMBs, v.BaselineMBs, v.Ratio, v.SimIPC, status)
		for _, r := range v.FailureReasons {
			log.Printf("  ↳ %s", r)
		}
	}
	for _, name := range rep.Missing {
		log.Printf("%-32s missing from this run (baseline has it)", name)
	}
	log.Printf("machine speed ratio %.3f, tolerance %.0f%%", rep.SpeedRatio, 100**tolerance)
	if !rep.Pass {
		log.Fatal("benchmark regression detected")
	}
	log.Printf("all benchmarks within the band")
}
