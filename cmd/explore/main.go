// Command explore searches the machine design space for the Pareto
// frontier of (harmonic-mean IPC, register-file energy per access,
// register-file access time) instead of crossing a dense grid — with
// ten machine axes plus register sizes and policies the interesting
// frontier lives in a space far too large to sweep exhaustively.
//
// The default space is everything: all three policies, the Figure 11
// register sizes, and every machine-model axis over its sensitivity
// range (~10M candidates). Strategies:
//
//	hillclimb  Pareto local search from the Table 2 baseline (default)
//	random     uniform sampling
//	halving    successive halving: wide screening at -screen-scale,
//	           survivors promoted toward full -scale
//
// All randomness flows from -seed: the same (seed, budget, space)
// yields a byte-identical frontier, and evaluations are served from
// the content-addressed sweep cache, so a warm rerun simulates
// nothing. Restrict the space with the register/policy flags and
// repeatable -axis flags (only the named axes stay free):
//
//	explore -strategy hillclimb -budget 64 -cache sweep-cache.json
//	explore -budget 200 -strategy halving -axis ros=32,64,128,256 -axis l1d=8,16,32
//	explore -policies conv,extended -int-regs 40,48,56,64 -fp-regs 64,72,79
//
// Like every sweep, exploration scales out through a sweepd
// coordinator: -remote URL submits the whole job to its /explore
// routes (candidate batches shard across the coordinator's workers),
// while -remote-cache keeps the search local but shares the
// coordinator's result cache. -json writes the frontier (the CI
// explore smoke asserts it is non-empty, non-dominated, and fully
// cached on a warm rerun).
//
// Local evaluation batches candidates sharing a (workload, scale)
// trace onto the lockstep execution path (DESIGN.md §4.6) — results
// stay bit-identical to scalar, so frontiers do not depend on -batch
// (0 = auto width, 1 = scalar). -cpuprofile/-memprofile write
// runtime/pprof profiles of the whole search.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"earlyrelease/internal/prof"
	"earlyrelease/internal/search"
	"earlyrelease/internal/stats"
	"earlyrelease/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	var (
		strategy   = flag.String("strategy", "hillclimb", "search strategy: "+strings.Join(search.StrategyNames(), ", "))
		budget     = flag.Int("budget", 64, "candidate evaluations (screening included)")
		seed       = flag.Int64("seed", 0, "random seed (same seed+budget+space = identical frontier)")
		scale      = flag.Int("scale", sweep.DefaultScale, "dynamic instructions per workload")
		screen     = flag.Int("screen-scale", 0, "halving screening scale (0 = scale/8)")
		seedBatch  = flag.Int("seed-batch", 0, "random-seeding batch size (0 = default)")
		batch      = flag.Int("batch", 0, "lockstep batch width for candidates sharing a trace (0 = auto, 1 = scalar)")
		check      = flag.Bool("check", false, "run evaluations with the invariant checker (slower)")
		workloadsF = flag.String("workloads", "", "workloads for the IPC objective (empty = paper suite)")
		policiesF  = flag.String("policies", "", "policy dimension (empty = conv,basic,extended)")
		intRegsF   = flag.String("int-regs", "", "integer file size dimension (empty = Figure 11 sizes)")
		fpRegsF    = flag.String("fp-regs", "", "FP size dimension (empty = tied to int)")
		parallel   = flag.Int("parallel", 0, "local simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "persistent result cache: a JSON file, or a directory for the segment-log store")
		remote     = flag.String("remote", "", "sweepd coordinator URL: run the job on its /explore routes")
		remoteC    = flag.String("remote-cache", "", "sweepd coordinator URL: search locally over its shared cache")
		jsonPath   = flag.String("json", "", "write the frontier JSON to this file (\"-\" = stdout)")
		statsPath  = flag.String("stats-json", "", "write run + cache statistics to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile after the search to this file")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	axisVals := map[string][]int{}
	var axisOrder []string
	flag.Func("axis", "free machine axis as name=v1,v2,... (repeatable; restricts the space to the named axes; 0 = Table 2 baseline)",
		func(s string) error {
			name, vals, err := sweep.ParseAxisFlag(s)
			if err != nil {
				return err
			}
			if _, dup := axisVals[name]; !dup {
				axisOrder = append(axisOrder, name)
			}
			axisVals[name] = append(axisVals[name], vals...)
			return nil
		})
	flag.Parse()

	intRegs, err := sweep.SplitInts(*intRegsF)
	if err != nil {
		log.Fatal(err)
	}
	fpRegs, err := sweep.SplitInts(*fpRegsF)
	if err != nil {
		log.Fatal(err)
	}
	spec := search.Spec{
		Strategy:    *strategy,
		Budget:      *budget,
		Seed:        *seed,
		Scale:       *scale,
		ScreenScale: *screen,
		Batch:       *seedBatch,
		Check:       *check,
		Workloads:   sweep.SplitList(*workloadsF),
	}
	// Any space flag pins the space; -axis lists name the axes that
	// stay free (none named = machine axes pinned to Table 2). With no
	// space flags at all, the full default space is searched.
	if len(axisVals) > 0 || *policiesF != "" || len(intRegs) > 0 || len(fpRegs) > 0 {
		sp := &search.Space{Policies: sweep.SplitList(*policiesF), IntRegs: intRegs, FPRegs: fpRegs}
		for _, name := range axisOrder {
			sp.Axes = append(sp.Axes, search.AxisRange{Name: name, Values: axisVals[name]})
		}
		if len(sp.Axes) == 0 {
			// Pin every machine axis to its baseline.
			for _, ax := range sweep.MachineAxes() {
				sp.Axes = append(sp.Axes, search.AxisRange{Name: ax.Name, Values: []int{ax.Baseline}})
			}
		}
		spec.Space = sp
	}

	if *remote != "" && (*cachePath != "" || *remoteC != "") {
		log.Fatal("-remote runs the job on the coordinator (which owns the cache); " +
			"it cannot be combined with -cache or -remote-cache")
	}

	stopProf, err := prof.Start(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}

	progress := func(done, total int, last string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%d/%d evaluations, %s", done, total, last+strings.Repeat(" ", 20))
		}
	}
	var fr *search.Frontier
	var cacheStats sweep.CacheStats
	if *remote != "" {
		fr, err = search.NewClient(*remote).Run(spec, func(p search.Progress) {
			progress(p.Evaluations+p.ScreenEvaluations, p.Budget, p.Last)
		})
	} else {
		eng := &sweep.Engine{Parallel: *parallel, Batch: *batch}
		if *cachePath != "" {
			if eng.Cache, err = sweep.OpenCache(*cachePath); err != nil {
				log.Fatal(err)
			}
		}
		if *remoteC != "" {
			if eng.Cache == nil {
				eng.Cache = sweep.NewCache()
			}
			eng.Cache.SetRemote(sweep.NewRemoteCache(*remoteC))
		}
		fr, err = (&search.Explorer{Eval: eng}).Run(spec, func(p search.Progress) {
			progress(p.Evaluations+p.ScreenEvaluations, p.Budget, p.Last)
		})
		if eng.Cache != nil {
			cacheStats = eng.Cache.Stats()
			if cerr := eng.Cache.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	stopProf()
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if perr := prof.WriteHeap(*memProf); perr != nil {
		log.Fatal(perr)
	}

	t := stats.NewTable("policy", "int+fp", "machine", "hm IPC", "E/acc (pJ)", "t/acc (ns)", "early/1k")
	for _, e := range fr.Frontier {
		machine := "table2"
		if len(e.Candidate.Machine) > 0 {
			var parts []string
			for _, ax := range sweep.MachineAxes() {
				if v, ok := e.Candidate.Machine[ax.Name]; ok {
					parts = append(parts, fmt.Sprintf("%s=%d", ax.Name, v))
				}
			}
			machine = strings.Join(parts, ",")
		}
		t.AddRow(e.Candidate.Policy,
			fmt.Sprintf("%d+%d", e.Candidate.IntRegs, e.Candidate.FPRegs),
			machine,
			fmt.Sprintf("%.3f", e.Objectives.IPC),
			fmt.Sprintf("%.0f", e.Objectives.EnergyPJ),
			fmt.Sprintf("%.2f", e.Objectives.AccessNs),
			fmt.Sprintf("%.1f", e.Objectives.EarlyPerKilo))
	}
	fmt.Printf("Pareto frontier: %d of %d evaluated candidates (space %d, strategy %s, seed %d)\n",
		len(fr.Frontier), fr.Evaluations, fr.SpaceSize, fr.Spec.Strategy, fr.Spec.Seed)
	fmt.Print(t.String())

	log.Printf("%d rounds: %d full + %d screening evaluations, %d candidate errors; "+
		"%d points (%d simulated, %d cached)",
		fr.Rounds, fr.Evaluations, fr.ScreenEvaluations, fr.CandidateErrors,
		fr.Points.Points, fr.Points.Simulated, fr.Points.CacheHits)

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(fr, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *statsPath != "" {
		blob, _ := json.MarshalIndent(struct {
			Rounds       int              `json:"rounds"`
			Evaluations  int              `json:"evaluations"`
			ScreenEvals  int              `json:"screen_evaluations"`
			Errors       int              `json:"candidate_errors"`
			FrontierSize int              `json:"frontier_size"`
			NonDominated bool             `json:"non_dominated"`
			Points       sweep.RunStats   `json:"points"`
			Cache        sweep.CacheStats `json:"cache"`
		}{fr.Rounds, fr.Evaluations, fr.ScreenEvaluations, fr.CandidateErrors,
			len(fr.Frontier), fr.NonDominated, fr.Points, cacheStats}, "", "  ")
		if err := os.WriteFile(*statsPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if len(fr.Frontier) == 0 || !fr.NonDominated {
		log.Fatal("exploration produced no usable frontier")
	}
}
