// Command loadgen drives a sweepd coordinator with a mixed population
// of well-behaved and abusive tenants and grades the service against
// its admission SLOs (DESIGN.md §4.8):
//
//   - every accepted sweep (202) runs to completion — zero dropped jobs;
//   - with -verify, accepted results are byte-identical to a direct
//     in-process engine run of the same grid;
//   - with -trace-verify, every accepted job's /trace timeline is
//     complete (submit → plan → every shard completed → done) and its
//     spans are monotonically ordered;
//   - every rate/quota rejection (429) carries a Retry-After header;
//   - abusive oversized grids are rejected 413 and never reach the queue;
//   - the p99 submit latency stays under -slo-p99 despite the abuse;
//   - with -reconcile, the coordinator's /metrics admission totals match
//     loadgen's own client-side counts exactly.
//
// Typical soak (the CI recipe):
//
//	loadgen -addr http://127.0.0.1:8080 -clients 1000 -abusive 100 \
//	  -requests 3 -token gold-token -abusive-token abuse-token \
//	  -scale 2000 -verify -reconcile -json SOAK.json
//
// Exit status is 0 only if every SLO holds; the JSON summary names the
// violations otherwise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earlyrelease/internal/obs"
	"earlyrelease/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "coordinator base URL")
		clients  = flag.Int("clients", 100, "well-behaved concurrent clients")
		abusive  = flag.Int("abusive", 10, "abusive concurrent clients")
		requests = flag.Int("requests", 3, "submissions per client")
		token    = flag.String("token", "", "API token for well-behaved clients (empty = anonymous)")
		abuseTok = flag.String("abusive-token", "", "API token for abusive clients (empty = anonymous)")

		workloads = flag.String("workloads", "tomcatv,go", "grid pool workloads (comma-separated)")
		policies  = flag.String("policies", "conv,extended", "grid pool policies")
		intRegs   = flag.String("int-regs", "40,48", "grid pool register axis")
		scale     = flag.Int("scale", 2000, "instruction budget per trace")
		abusePts  = flag.Int("abuse-points", 10000, "points in the abusive oversized grid")

		sloP99    = flag.Duration("slo-p99", 2*time.Second, "p99 submit-latency SLO")
		verify    = flag.Bool("verify", false, "check accepted results against a direct engine run")
		traceVer  = flag.Bool("trace-verify", false, "fetch every accepted job's /trace and assert a complete, ordered timeline")
		reconcile = flag.Bool("reconcile", false, "check /metrics admission totals against client counts")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall deadline for the run")
		jsonOut   = flag.String("json", "", "write the JSON summary to this file (always printed to stdout)")
	)
	flag.Parse()

	lg := &loadgen{
		base:        strings.TrimRight(*addr, "/"),
		scale:       *scale,
		abusePts:    *abusePts,
		traceVerify: *traceVer,
		deadline:    time.Now().Add(*timeout),
	}
	lg.pool = gridPool(splitList(*workloads), splitList(*policies), splitInts(*intRegs), *scale)
	// One shared transport sized for the client population: the default
	// two idle conns per host would make 1000 clients thrash TCP.
	lg.hc = &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * (*clients + *abusive),
			MaxIdleConnsPerHost: 4 * (*clients + *abusive),
		},
	}

	if *verify {
		if err := lg.computeReferences(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: reference run: %v\n", err)
			os.Exit(2)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lg.wellBehaved(id, *token, *requests)
		}(i)
	}
	for i := 0; i < *abusive; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lg.abuser(id, *abuseTok, *requests)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	sum := lg.summarize(wall, *sloP99, *verify)
	if *reconcile {
		lg.reconcile(&sum)
	}

	blob, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(blob))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		}
	}
	if len(sum.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: SLO violations: %s\n", strings.Join(sum.Violations, "; "))
		os.Exit(1)
	}
}

// loadgen carries the shared state of one run. Counters are atomics;
// the latency slices and reference table take the mutex.
type loadgen struct {
	base        string
	hc          *http.Client
	pool        []sweep.Grid
	refs        [][]byte // canonical outcome JSON per pool grid (with -verify)
	scale       int
	abusePts    int
	traceVerify bool
	deadline    time.Time

	accepted      atomic.Uint64 // 202s (well-behaved + abusive)
	completed     atomic.Uint64 // accepted jobs that reached state "done" cleanly
	rejected429   atomic.Uint64
	rejected413   atomic.Uint64
	missingRetry  atomic.Uint64 // 429s without a usable Retry-After
	badStatus     atomic.Uint64 // anything outside {202, 429, 413}
	transportErrs atomic.Uint64
	mismatches    atomic.Uint64 // -verify result drift
	neverDone     atomic.Uint64 // accepted but not done by the deadline
	evicted       atomic.Uint64 // accepted but evicted before the result was read
	badTraces     atomic.Uint64 // -trace-verify timeline failures

	mu        sync.Mutex
	latencies []time.Duration // submit round-trips, well-behaved only
	e2eLats   []time.Duration // submit → state "done", well-behaved only
}

// gridPool builds the well-behaved submission pool: one single-
// workload, single-policy grid per (workload, policy) pair so distinct
// clients exercise distinct traces while the coordinator cache keeps
// repeats cheap.
func gridPool(workloads, policies []string, regs []int, scale int) []sweep.Grid {
	var pool []sweep.Grid
	for _, w := range workloads {
		for _, p := range policies {
			pool = append(pool, sweep.Grid{Workloads: []string{w}, Policies: []string{p},
				IntRegs: regs, Scale: scale})
		}
	}
	return pool
}

// computeReferences runs every pool grid on a local engine (shared
// cache, so overlapping points simulate once) and stores the canonical
// outcome JSON the coordinator must reproduce byte for byte.
func (lg *loadgen) computeReferences() error {
	eng := &sweep.Engine{Cache: sweep.NewCache()}
	lg.refs = make([][]byte, len(lg.pool))
	for i, g := range lg.pool {
		res, err := eng.Run(g, nil)
		if err != nil {
			return err
		}
		if res.Stats.Errors != 0 {
			return fmt.Errorf("reference grid %d has %d errors", i, res.Stats.Errors)
		}
		lg.refs[i] = canonicalOutcomes(res)
	}
	return nil
}

// canonicalOutcomes strips the cache provenance bit (a point is the
// same result whether it was simulated or replayed) and marshals the
// rest deterministically.
func canonicalOutcomes(res *sweep.Results) []byte {
	type flat struct {
		Point  sweep.Point     `json:"point"`
		Key    string          `json:"key"`
		Err    string          `json:"err,omitempty"`
		Result json.RawMessage `json:"result,omitempty"`
	}
	out := make([]flat, len(res.Outcomes))
	for i, o := range res.Outcomes {
		var r json.RawMessage
		if o.Result != nil {
			r, _ = json.Marshal(o.Result)
		}
		out[i] = flat{Point: o.Point, Key: o.Key, Err: o.Err, Result: r}
	}
	blob, _ := json.Marshal(out)
	return blob
}

// wellBehaved submits pool grids, honors Retry-After on 429, polls
// accepted jobs to completion and verifies their results.
func (lg *loadgen) wellBehaved(id int, token string, requests int) {
	for r := 0; r < requests && time.Now().Before(lg.deadline); r++ {
		gi := (id + r) % len(lg.pool)
		lg.submitAndWait(gi, token)
	}
}

// submitAndWait pushes one grid through the full lifecycle. A 429 is
// retried after the advertised Retry-After until the deadline; 413 for
// a well-behaved pool grid is recorded as a bad status (the pool is
// sized to fit any sane quota).
func (lg *loadgen) submitAndWait(gi int, token string) {
	for time.Now().Before(lg.deadline) {
		submitted := time.Now()
		status, hdr, body, took, err := lg.post("/sweep", token, lg.pool[gi])
		if err != nil {
			lg.transportErrs.Add(1)
			return
		}
		lg.mu.Lock()
		lg.latencies = append(lg.latencies, took)
		lg.mu.Unlock()
		switch status {
		case http.StatusAccepted:
			lg.accepted.Add(1)
			var out struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(body, &out) != nil || out.ID == "" {
				lg.badStatus.Add(1)
				return
			}
			lg.await(out.ID, gi, token, submitted)
			return
		case http.StatusTooManyRequests:
			lg.rejected429.Add(1)
			delay, ok := retryAfter(hdr)
			if !ok {
				lg.missingRetry.Add(1)
				delay = time.Second
			}
			time.Sleep(delay)
		default:
			lg.badStatus.Add(1)
			return
		}
	}
}

// await polls one accepted sweep until it reports done, then verifies
// the outcomes against the local reference. The poll interval backs
// off exponentially: with a thousand concurrent waiters, a fixed tight
// interval would make the status polls themselves the denial of
// service the admission layer exists to prevent.
func (lg *loadgen) await(id string, gi int, token string, submitted time.Time) {
	delay := 200 * time.Millisecond
	for time.Now().Before(lg.deadline) {
		time.Sleep(delay)
		if delay < 3*time.Second {
			delay = delay * 8 / 5
		}
		status, _, body, _, err := lg.get("/sweep/"+id, token)
		if status == http.StatusNotFound {
			// The job record was evicted from the coordinator's bounded
			// history before we read it — the work happened (reconcile
			// proves it against /metrics) but the result is gone for
			// this client. Counted separately: the fix is sizing sweepd
			// -retain above the client population, not retrying.
			lg.evicted.Add(1)
			return
		}
		if err != nil || status != http.StatusOK {
			continue // transient; the deadline bounds us
		}
		var job struct {
			State   string         `json:"state"`
			Err     string         `json:"err"`
			Results *sweep.Results `json:"results"`
		}
		if json.Unmarshal(body, &job) != nil {
			continue
		}
		if job.State != "done" {
			continue
		}
		if job.Err != "" || job.Results == nil {
			lg.neverDone.Add(1)
			return
		}
		lg.completed.Add(1)
		lg.mu.Lock()
		lg.e2eLats = append(lg.e2eLats, time.Since(submitted))
		lg.mu.Unlock()
		if lg.refs != nil && !bytes.Equal(canonicalOutcomes(job.Results), lg.refs[gi]) {
			lg.mismatches.Add(1)
		}
		if lg.traceVerify {
			lg.verifyTrace(id, token)
		}
		return
	}
	lg.neverDone.Add(1)
}

// verifyTrace fetches an accepted job's timeline and asserts it is
// complete and ordered: a submit span, a complete span for every
// planned shard, the terminal done span, and StartNS monotonically
// non-decreasing across the whole timeline (the coordinator sorts
// before serving). A fully cached job legitimately plans zero shards —
// the shard/complete sets are compared, not required non-empty.
func (lg *loadgen) verifyTrace(id, token string) {
	status, _, body, _, err := lg.get("/sweep/"+id+"/trace", token)
	if err != nil || status != http.StatusOK {
		lg.badTraces.Add(1)
		return
	}
	var tl obs.Timeline
	if json.Unmarshal(body, &tl) != nil {
		lg.badTraces.Add(1)
		return
	}
	var submit, done bool
	shards := map[string]bool{}
	completed := map[string]bool{}
	var prev int64
	for _, sp := range tl.Spans {
		if sp.StartNS < prev {
			lg.badTraces.Add(1)
			return
		}
		prev = sp.StartNS
		switch sp.Name {
		case "submit":
			submit = true
		case "shard":
			shards[sp.Ref] = true
		case "complete":
			completed[sp.Ref] = true
		case "done":
			done = true
		}
	}
	if !submit || !done {
		lg.badTraces.Add(1)
		return
	}
	for ref := range shards {
		if !completed[ref] {
			lg.badTraces.Add(1)
			return
		}
	}
}

// abuser alternates two attack shapes and never backs off: oversized
// grids that must bounce 413 at admission, and rapid-fire submissions
// that must bounce 429 once the tenant's burst is spent. Whatever does
// get accepted is left to run — its completion is the coordinator's
// problem, which is the point.
func (lg *loadgen) abuser(id int, token string, requests int) {
	// points = len(IntRegs): a synthetic register axis inflates the
	// expansion without inflating the body past the 1 MiB bound.
	regs := make([]int, lg.abusePts)
	for i := range regs {
		regs[i] = 16 + i
	}
	oversized := sweep.Grid{Workloads: []string{"go"}, Policies: []string{"conv"},
		IntRegs: regs, Scale: lg.scale}
	tiny := sweep.Grid{Workloads: []string{"go"}, Policies: []string{"conv"},
		IntRegs: []int{48}, Scale: lg.scale}

	for r := 0; r < 2*requests && time.Now().Before(lg.deadline); r++ {
		g := tiny
		if r%2 == 0 {
			g = oversized
		}
		status, hdr, _, _, err := lg.post("/sweep", token, g)
		if err != nil {
			lg.transportErrs.Add(1)
			continue
		}
		switch status {
		case http.StatusRequestEntityTooLarge:
			lg.rejected413.Add(1)
		case http.StatusTooManyRequests:
			lg.rejected429.Add(1)
			if _, ok := retryAfter(hdr); !ok {
				lg.missingRetry.Add(1)
			}
		case http.StatusAccepted:
			if r%2 == 0 {
				lg.badStatus.Add(1) // an oversized grid must never be admitted
			} else {
				lg.accepted.Add(1)
				lg.completed.Add(1) // not polled; excluded from the drop check below
			}
		default:
			lg.badStatus.Add(1)
		}
	}
}

// --- HTTP plumbing -----------------------------------------------------

func (lg *loadgen) post(path, token string, v any) (int, http.Header, []byte, time.Duration, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, lg.base+path, bytes.NewReader(blob))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return lg.do(req, token)
}

func (lg *loadgen) get(path, token string) (int, http.Header, []byte, time.Duration, error) {
	req, err := http.NewRequest(http.MethodGet, lg.base+path, nil)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	return lg.do(req, token)
}

func (lg *loadgen) do(req *http.Request, token string) (int, http.Header, []byte, time.Duration, error) {
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	t0 := time.Now()
	resp, err := lg.hc.Do(req)
	took := time.Since(t0)
	if err != nil {
		return 0, nil, nil, took, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, took, err
	}
	return resp.StatusCode, resp.Header, body, took, nil
}

// retryAfter parses a delay-seconds Retry-After header.
func retryAfter(h http.Header) (time.Duration, bool) {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 1 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// --- grading -----------------------------------------------------------

// Summary is the machine-readable verdict of one loadgen run.
type Summary struct {
	WallSeconds   float64 `json:"wall_seconds"`
	Submissions   int     `json:"submissions"`
	Accepted      uint64  `json:"accepted"`
	Completed     uint64  `json:"completed"`
	Rejected429   uint64  `json:"rejected_429"`
	Rejected413   uint64  `json:"rejected_413"`
	MissingRetry  uint64  `json:"missing_retry_after"`
	BadStatus     uint64  `json:"bad_status"`
	TransportErrs uint64  `json:"transport_errors"`
	NeverDone     uint64  `json:"never_done"`
	Evicted       uint64  `json:"evicted"`
	Mismatches    uint64  `json:"result_mismatches"`
	BadTraces     uint64  `json:"bad_traces"`

	P50Ms float64 `json:"submit_p50_ms"`
	P90Ms float64 `json:"submit_p90_ms"`
	P95Ms float64 `json:"submit_p95_ms"`
	P99Ms float64 `json:"submit_p99_ms"`

	// End-to-end latency — submit round-trip start to the poll that
	// observed state "done" — from the same client samples.
	E2eP50Ms float64 `json:"e2e_p50_ms"`
	E2eP90Ms float64 `json:"e2e_p90_ms"`
	E2eP99Ms float64 `json:"e2e_p99_ms"`

	Reconciled *Reconciled `json:"reconciled,omitempty"`
	Violations []string    `json:"violations"`
}

// Reconciled pairs loadgen's client-side admission counts with the
// coordinator's /metrics totals.
type Reconciled struct {
	MetricsAccepted float64 `json:"metrics_accepted"`
	MetricsRejected float64 `json:"metrics_rejected"`
	ClientAccepted  uint64  `json:"client_accepted"`
	ClientRejected  uint64  `json:"client_rejected"`
	Match           bool    `json:"match"`
}

func (lg *loadgen) summarize(wall time.Duration, sloP99 time.Duration, verified bool) Summary {
	lg.mu.Lock()
	lats := append([]time.Duration(nil), lg.latencies...)
	e2e := append([]time.Duration(nil), lg.e2eLats...)
	lg.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(e2e, func(i, j int) bool { return e2e[i] < e2e[j] })
	pctOf := func(sorted []time.Duration, p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	pct := func(p float64) float64 { return pctOf(lats, p) }

	s := Summary{
		WallSeconds:   wall.Seconds(),
		Submissions:   len(lats),
		Accepted:      lg.accepted.Load(),
		Completed:     lg.completed.Load(),
		Rejected429:   lg.rejected429.Load(),
		Rejected413:   lg.rejected413.Load(),
		MissingRetry:  lg.missingRetry.Load(),
		BadStatus:     lg.badStatus.Load(),
		TransportErrs: lg.transportErrs.Load(),
		NeverDone:     lg.neverDone.Load(),
		Evicted:       lg.evicted.Load(),
		Mismatches:    lg.mismatches.Load(),
		BadTraces:     lg.badTraces.Load(),
		P50Ms:         pct(0.50),
		P90Ms:         pct(0.90),
		P95Ms:         pct(0.95),
		P99Ms:         pct(0.99),
		E2eP50Ms:      pctOf(e2e, 0.50),
		E2eP90Ms:      pctOf(e2e, 0.90),
		E2eP99Ms:      pctOf(e2e, 0.99),
		Violations:    []string{},
	}
	if s.Accepted != s.Completed || s.NeverDone > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"dropped jobs: %d accepted, %d completed, %d never done",
			s.Accepted, s.Completed, s.NeverDone))
	}
	if s.Evicted > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"%d accepted jobs evicted before their results were read (raise sweepd -retain)",
			s.Evicted))
	}
	if s.MissingRetry > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"%d rate rejections without Retry-After", s.MissingRetry))
	}
	if s.BadStatus > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf("%d unexpected statuses", s.BadStatus))
	}
	if s.TransportErrs > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf("%d transport errors", s.TransportErrs))
	}
	if verified && s.Mismatches > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"%d accepted sweeps diverged from the direct engine run", s.Mismatches))
	}
	if s.BadTraces > 0 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"%d accepted jobs had incomplete or out-of-order trace timelines", s.BadTraces))
	}
	if p99 := time.Duration(s.P99Ms * float64(time.Millisecond)); p99 > sloP99 {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"submit p99 %.0fms exceeds SLO %s", s.P99Ms, sloP99))
	}
	return s
}

// reconcile scrapes /metrics and checks the coordinator's per-tenant
// admission totals sum to exactly what the clients observed.
func (lg *loadgen) reconcile(s *Summary) {
	status, _, body, _, err := lg.get("/metrics", "")
	if err != nil || status != http.StatusOK {
		s.Violations = append(s.Violations, fmt.Sprintf("metrics scrape failed: status %d err %v", status, err))
		return
	}
	rec := &Reconciled{
		MetricsAccepted: sumMetric(string(body), "sweepd_tenant_accepted_total"),
		MetricsRejected: sumMetric(string(body), "sweepd_tenant_rejected_total"),
		ClientAccepted:  s.Accepted,
		ClientRejected:  s.Rejected429 + s.Rejected413,
	}
	rec.Match = rec.MetricsAccepted == float64(rec.ClientAccepted) &&
		rec.MetricsRejected == float64(rec.ClientRejected)
	s.Reconciled = rec
	if !rec.Match {
		s.Violations = append(s.Violations, fmt.Sprintf(
			"metrics totals disagree with client counts: accepted %v vs %d, rejected %v vs %d",
			rec.MetricsAccepted, rec.ClientAccepted, rec.MetricsRejected, rec.ClientRejected))
	}
}

// sumMetric totals every sample of a counter across its label sets.
func sumMetric(text, name string) float64 {
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			total += v
		}
	}
	return total
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: bad integer %q in list\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
