// Command earlyrel runs one workload through the cycle-level simulator
// under a chosen register-release policy and prints the detailed result:
// IPC, stall breakdown, release statistics and the Empty/Ready/Idle
// register-state averages.
//
// Usage:
//
//	earlyrel -workload tomcatv -policy extended -int 48 -fp 48 -scale 300000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"earlyrelease/internal/experiments"
	"earlyrelease/internal/release"
	"earlyrelease/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("earlyrel: ")
	var (
		workload = flag.String("workload", "tomcatv", "workload name ("+strings.Join(workloads.Names(), ", ")+")")
		policy   = flag.String("policy", "extended", "release policy (conv, basic, extended)")
		intRegs  = flag.Int("int", 48, "physical integer registers")
		fpRegs   = flag.Int("fp", 48, "physical FP registers")
		scale    = flag.Int("scale", 300_000, "approximate dynamic instructions")
		check    = flag.Bool("check", false, "enable invariant checking")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %-4s %s\n", w.Name, w.Class, w.Description)
		}
		return
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := release.ParseKind(*policy)
	if err != nil {
		log.Fatal(err)
	}
	opt := experiments.Options{Scale: *scale, Check: *check}
	res, err := experiments.Run(w, kind, *intRegs, *fpRegs, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload      %s (%s)\n", w.Name, w.Description)
	fmt.Printf("policy        %s   registers %dint+%dfp\n", res.Policy, *intRegs, *fpRegs)
	fmt.Printf("committed     %d instructions in %d cycles\n", res.Committed, res.Cycles)
	fmt.Printf("IPC           %.3f\n", res.IPC)
	fmt.Printf("branch acc.   %.2f%%  (%d mispredicts, %d wrong-path uops)\n",
		100*res.BranchAccuracy, res.Mispredicts, res.WrongPathUops)
	fmt.Printf("caches        L1I %.2f%%  L1D %.2f%%  L2 %.2f%% miss\n",
		100*res.L1IMissRate, 100*res.L1DMissRate, 100*res.L2MissRate)
	fmt.Printf("stalls        regs=%d ros=%d lsq=%d branches=%d fetch=%d\n",
		res.Stalls.NoPhysReg, res.Stalls.ROSFull, res.Stalls.LSQFull,
		res.Stalls.Branches, res.Stalls.FetchDry)
	fmt.Printf("int regs      %s\n", res.IntBreakdown)
	fmt.Printf("fp regs       %s\n", res.FPBreakdown)
	fmt.Printf("releases      ")
	for r := 0; r < release.NumFreeReasons; r++ {
		if n := res.Release.Frees[r]; n > 0 {
			fmt.Printf("%s=%d ", release.FreeReason(r), n)
		}
	}
	fmt.Println()
	fmt.Printf("scheduling    scheduled=%d reuse=%d relque-cond=%d relque-mark=%d dropped=%d peak-branches=%d\n",
		res.Release.Scheduled, res.Release.ReuseHits, res.Release.RelQueCond,
		res.Release.RelQueMark, res.Release.RelQueDrop, res.Release.PeakPending)
	if res.Exceptions > 0 {
		fmt.Printf("exceptions    %d\n", res.Exceptions)
	}
	os.Exit(0)
}
