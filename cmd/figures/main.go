// Command figures regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	-fig3    register-state breakdown under conventional renaming
//	-sec33   basic-mechanism speedups at 64/48/40 registers
//	-fig9    register-file access time & energy model curves
//	-sec44   energy balance and storage cost
//	-fig10   per-benchmark IPC at 48+48 registers, three policies
//	-fig11   harmonic-mean IPC vs register file size (+ -table4)
//	-table1  the commercial register-file survey (static data)
//	-all     everything above
//
// Beyond the paper, -sensitivity AXES sweeps machine-model axes (ROS
// size, widths, LSQ, predictor and cache geometry — "all" or a comma
// list, see `sweep -axes`) one at a time around the Table 2 baseline
// and plots per-axis IPC and early-release-rate curves. It is not part
// of -all: its grid is several times the size of the whole paper.
//
// -frontier re-derives the §4.4 energy balance as a searched Pareto
// frontier (cmd/explore's engine): one hill-climb per policy over the
// int×fp sizing space, then the equal-IPC energy pairing between the
// conventional and extended frontiers. Tune with -frontier-budget and
// -frontier-seed; also not part of -all.
//
// Use -scale to trade fidelity for time and -quick for a fast smoke run.
// With -cache FILE, results persist across runs: a repeated invocation
// only simulates points whose configuration changed. -stats-json FILE
// records the run's cache statistics (the CI tier-2 smoke asserts a
// warm rerun is 100% hits).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"earlyrelease/internal/experiments"
	"earlyrelease/internal/stats"
	"earlyrelease/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		all     = flag.Bool("all", false, "regenerate everything")
		fig3    = flag.Bool("fig3", false, "Figure 3")
		sec33   = flag.Bool("sec33", false, "Section 3.3 speedups")
		fig9    = flag.Bool("fig9", false, "Figure 9")
		sec44   = flag.Bool("sec44", false, "Section 4.4 energy balance")
		fig10   = flag.Bool("fig10", false, "Figure 10")
		fig11   = flag.Bool("fig11", false, "Figure 11")
		table1  = flag.Bool("table1", false, "Table 1")
		table4  = flag.Bool("table4", false, "Table 4 (implies -fig11)")
		sens    = flag.String("sensitivity", "", "machine-model sensitivity axes: \"all\" or comma list (ros,issue,lsq,...)")
		sensWs  = flag.String("sens-workloads", "", "workloads for -sensitivity (empty = paper suite)")
		front   = flag.Bool("frontier", false, "searched §4.4 energy balance (Pareto frontier per policy)")
		frontB  = flag.Int("frontier-budget", 60, "candidate evaluations per policy for -frontier")
		frontS  = flag.Int64("frontier-seed", 1, "search seed for -frontier")
		frontWs = flag.String("frontier-workloads", "", "workloads for -frontier (empty = paper suite)")
		scale   = flag.Int("scale", 300_000, "dynamic instructions per workload")
		quick   = flag.Bool("quick", false, "smaller scale and size axis")
		check   = flag.Bool("check", false, "enable invariant checking")
		cache   = flag.String("cache", "", "persistent sweep-result cache — a JSON file or a store directory (repeated runs only simulate new points)")
		remote  = flag.String("remote", "", "sweepd coordinator URL: farm every driver grid out for federated execution")
		remoteC = flag.String("remote-cache", "", "sweepd coordinator URL: run locally over its shared result cache")
		statsJ  = flag.String("stats-json", "", "write cache statistics to this file")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Check = *check
	opt.Remote = *remote

	// Ctrl-C abandons a federated wait cleanly; local runs finish the
	// point in flight as before.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opt.Context = ctx
	if *remote != "" && (*cache != "" || *remoteC != "") {
		log.Fatal("-remote farms grids out to the coordinator (which owns the cache); " +
			"it cannot be combined with -cache or -remote-cache")
	}
	if *cache != "" {
		c, err := sweep.OpenCache(*cache)
		if err != nil {
			log.Fatal(err)
		}
		opt.Cache = c
	}
	if *remoteC != "" {
		if opt.Cache == nil {
			opt.Cache = sweep.NewCache()
		}
		opt.Cache.SetRemote(sweep.NewRemoteCache(*remoteC))
	}
	sizes := experiments.DefaultSizes
	if *quick {
		opt.Scale = 60_000
		sizes = []int{40, 48, 64, 80, 96, 128, 160}
	}
	if !(*all || *fig3 || *sec33 || *fig9 || *sec44 || *fig10 || *fig11 || *table1 || *table4 ||
		*sens != "" || *front) {
		*all = true
	}

	if *all || *table1 {
		fmt.Println(table1Text)
	}
	if *all || *fig3 {
		res, err := experiments.Fig3(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
	if *all || *sec33 {
		res, err := experiments.Sec33(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
	if *all || *fig9 {
		fmt.Println(experiments.Fig9(sizes))
	}
	if *all || *sec44 {
		fmt.Println(experiments.Sec44())
	}
	if *all || *fig10 {
		res, err := experiments.Fig10(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
	if *all || *fig11 || *table4 {
		res, err := experiments.Fig11(opt, sizes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		fmt.Println(experiments.Table4String(experiments.Table4(res)))
	}

	if *sens != "" {
		var ws []string
		if *sensWs != "" {
			for _, w := range strings.Split(*sensWs, ",") {
				ws = append(ws, strings.TrimSpace(w))
			}
		}
		res, err := experiments.Sensitivity(opt, strings.Split(*sens, ","), ws)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}

	if *front {
		var ws []string
		if *frontWs != "" {
			for _, w := range strings.Split(*frontWs, ",") {
				ws = append(ws, strings.TrimSpace(w))
			}
		}
		res, err := experiments.Frontier(opt, *frontB, *frontS, ws)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}

	cs := experiments.CacheStats(opt)
	if opt.Cache != nil {
		if err := opt.Cache.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if cs.Hits+cs.Misses > 0 {
		log.Printf("sweep cache: %d entries, %d hits / %d lookups (%.1f%% hit rate)",
			cs.Entries, cs.Hits, cs.Hits+cs.Misses, 100*cs.HitRate)
	}
	if *statsJ != "" {
		blob, _ := json.MarshalIndent(cs, "", "  ")
		if err := os.WriteFile(*statsJ, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

var table1Text = func() string {
	t := stats.NewTable("processor", "int P", "int ports", "fp P", "fp ports", "N", "structure")
	t.AddRow("MIPS R10K", "64", "7R 3W", "64", "5R 3W", "32", "Active List")
	t.AddRow("MIPS R12K", "2x80", "2x(4R 6W)", "72", "6R 4W", "48", "Active List")
	t.AddRow("Alpha 21264", "80", "n.a.", "72", "n.a.", "80", "In-Flight Window")
	t.AddRow("Intel P4", "128", "n.a.", "128", "n.a.", "126", "Reorder Buffer")
	return "Table 1: out-of-order processors with merged register files (from the paper)\n" + t.String()
}()
