// Command asmrun assembles a program written in the suite's assembly
// dialect, runs it on the functional emulator, and reports the
// architectural result — a fast way to develop kernels before timing
// them with cmd/earlyrel.
//
// Usage:
//
//	asmrun [-dump] [-trace] [-max N] prog.s
//	echo 'li r1, 42
//	      halt' | asmrun -
//
// -dump prints the disassembled program, -trace the dynamic instruction
// stream, and the final integer/FP register state is always shown.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"earlyrelease/internal/asm"
	"earlyrelease/internal/emu"
	"earlyrelease/internal/isa"
	"earlyrelease/internal/program"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asmrun: ")
	var (
		dump     = flag.Bool("dump", false, "print the disassembled program")
		doTrace  = flag.Bool("trace", false, "print every executed instruction")
		maxInsts = flag.Uint64("max", 10_000_000, "dynamic instruction budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: asmrun [-dump] [-trace] [-max N] prog.s  (use '-' for stdin)")
	}

	name := flag.Arg(0)
	var src []byte
	var err error
	if name == "-" {
		name = "stdin"
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		log.Fatal(err)
	}

	p, err := asm.Assemble(name, string(src))
	if err != nil {
		log.Fatal(err)
	}
	if *dump {
		dumpProgram(p)
	}

	m := emu.New(p)
	if *doTrace {
		for !m.Halted {
			if m.ICount >= *maxInsts {
				log.Fatalf("instruction budget (%d) exhausted", *maxInsts)
			}
			e, err := m.Step()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d  %#06x  %s\n", m.ICount, e.PC, e.Inst)
		}
	} else if err := m.RunQuiet(*maxInsts); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("halted after %d instructions\n", m.ICount)
	fmt.Println("integer registers (non-zero):")
	for r := 0; r < isa.NumLogical; r++ {
		if v := m.IntR[r]; v != 0 {
			fmt.Printf("  %-4s = %-20d (%#x)\n", isa.IntName(isa.Reg(r)), int64(v), v)
		}
	}
	fmt.Println("fp registers (non-zero):")
	for r := 0; r < isa.NumLogical; r++ {
		if v := m.FPR[r]; v != 0 {
			fmt.Printf("  %-4s = %g\n", isa.FPName(isa.Reg(r)), v)
		}
	}
	fmt.Printf("state checksum: %#016x\n", m.Checksum())
}

func dumpProgram(p *program.Program) {
	fmt.Printf("; program %q: %d instructions, %d data bytes\n", p.Name, len(p.Insts), len(p.Data))
	// Invert the label map for annotation.
	byAddr := map[uint64][]string{}
	for name, addr := range p.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for i, in := range p.Insts {
		pc := program.IndexToPC(i)
		for _, l := range byAddr[pc] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %#06x  %s\n", pc, in)
	}
	fmt.Println()
}
