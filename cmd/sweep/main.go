// Command sweep runs one declarative parameter grid from the command
// line — the one-shot counterpart of the sweepd service. Axes are
// comma-separated lists; empty axes take the paper's defaults (all ten
// workloads, all three policies, 48+48 registers).
//
//	sweep -workloads tomcatv,swim -policies conv,extended -int-regs 40,48,64
//	sweep -cache sweep-cache.json -scale 300000        # incremental reruns
//
// With -json the full outcomes (every Result field) are printed;
// otherwise a compact IPC table. -stats-json FILE writes the run and
// cache statistics (the CI bench smoke uploads these).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"earlyrelease/internal/stats"
	"earlyrelease/internal/sweep"
)

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		workloadsF = flag.String("workloads", "", "comma-separated workloads (empty = all)")
		policiesF  = flag.String("policies", "", "comma-separated policies: conv,basic,extended (empty = all)")
		intRegsF   = flag.String("int-regs", "", "comma-separated integer file sizes (empty = 48)")
		fpRegsF    = flag.String("fp-regs", "", "comma-separated FP file sizes (empty = mirror int)")
		scale      = flag.Int("scale", sweep.DefaultScale, "dynamic instructions per workload")
		check      = flag.Bool("check", false, "enable invariant checking")
		ablate     = flag.Bool("ablate", false, "also sweep the no-reuse and eager ablations")
		parallel   = flag.Int("parallel", 0, "workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "persistent result-cache file")
		jsonOut    = flag.Bool("json", false, "print full outcomes as JSON")
		statsPath  = flag.String("stats-json", "", "write run + cache statistics to this file")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	intRegs, err := splitInts(*intRegsF)
	if err != nil {
		log.Fatal(err)
	}
	fpRegs, err := splitInts(*fpRegsF)
	if err != nil {
		log.Fatal(err)
	}
	g := sweep.Grid{
		Workloads: splitList(*workloadsF),
		Policies:  splitList(*policiesF),
		IntRegs:   intRegs,
		FPRegs:    fpRegs,
		Scale:     *scale,
		Check:     *check,
	}
	if *ablate {
		g.NoReuse = []bool{false, true}
		g.Eager = []bool{false, true}
	}

	eng := &sweep.Engine{Parallel: *parallel}
	if *cachePath != "" {
		if eng.Cache, err = sweep.OpenCache(*cachePath); err != nil {
			log.Fatal(err)
		}
	}

	progress := func(p sweep.Progress) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%d/%d done (%d cached, %d errors)   ",
				p.Done, p.Total, p.CacheHits, p.Errors)
		}
	}
	res, err := eng.Run(g, progress)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if res.SaveErr != "" {
		log.Printf("warning: results below are complete but were not persisted: %s", res.SaveErr)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		t := stats.NewTable("workload", "policy", "int+fp", "IPC", "cycles", "source")
		for _, o := range res.Outcomes {
			src := "run"
			if o.Cached {
				src = "cache"
			}
			if o.Err != "" {
				t.AddRow(o.Point.Workload, o.Point.Policy,
					fmt.Sprintf("%d+%d", o.Point.IntRegs, o.Point.FPRegs),
					"-", "-", "error: "+o.Err)
				continue
			}
			t.AddRow(o.Point.Workload, o.Point.Policy,
				fmt.Sprintf("%d+%d", o.Point.IntRegs, o.Point.FPRegs),
				fmt.Sprintf("%.3f", o.Result.IPC),
				fmt.Sprint(o.Result.Cycles), src)
		}
		fmt.Print(t.String())
	}

	cs := sweep.CacheStats{}
	if eng.Cache != nil {
		cs = eng.Cache.Stats()
	}
	log.Printf("%d points: %d simulated, %d cached, %d errors",
		res.Stats.Points, res.Stats.Simulated, res.Stats.CacheHits, res.Stats.Errors)
	if *statsPath != "" {
		blob, _ := json.MarshalIndent(struct {
			Run   sweep.RunStats   `json:"run"`
			Cache sweep.CacheStats `json:"cache"`
		}{res.Stats, cs}, "", "  ")
		if err := os.WriteFile(*statsPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if res.Stats.Errors > 0 {
		os.Exit(1)
	}
}
