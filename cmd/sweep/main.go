// Command sweep runs one declarative parameter grid from the command
// line — the one-shot counterpart of the sweepd service. Axes are
// comma-separated lists; empty axes take the paper's defaults (the
// whole workload corpus, all three policies, 48+48 registers on the
// Table 2 machine).
//
//	sweep -workloads tomcatv,swim -policies conv,extended -int-regs 40,48,64
//	sweep -cache sweep-cache.json -scale 300000        # incremental reruns
//
// A -cache that names a directory (existing, or with a trailing slash)
// selects the sharded segment-log store (DESIGN.md §4.7) instead of the
// monolithic JSON file — same results, but saves append instead of
// rewriting the corpus. Cache maintenance verbs run against either
// format and exit: -export streams the corpus as NDJSON, -import merges
// an export (skipping present keys unless -import-overwrite), -compact
// rewrites store segments that have decayed below the live-ratio
// threshold:
//
//	sweep -cache results/ -export corpus.ndjson
//	sweep -cache results/ -import corpus.ndjson
//	sweep -cache results/ -compact
//
// Machine-model axes are swept with repeatable -axis flags (0 names
// the Table 2 baseline, so "variants plus default" grids are easy);
// -axes lists the available axes:
//
//	sweep -axis ros=32,64,0,256 -axis issue=2,4,0 -workloads tomcatv
//	sweep -axis lsq=16,0 -axis bpred=10,0 -cache sweep-cache.json
//
// With -json the full outcomes (every Result field) are printed;
// otherwise a compact IPC table. -stats-json FILE writes the run and
// cache statistics (the CI smokes upload these).
//
// Points sharing a (workload, scale) trace execute on the batched
// lockstep path (DESIGN.md §4.6), which steps many pipeline configs
// per pass over one decoded trace; results are bit-identical to scalar
// execution. -batch caps the lockstep width (0 = auto, 1 = scalar).
// -cpuprofile/-memprofile write runtime/pprof profiles of the run.
//
// Grids can scale past one machine through a sweepd coordinator
// (DESIGN.md §4.3): -remote URL submits the grid for federated
// execution across the coordinator's workers, while -remote-cache URL
// keeps execution local but layers the coordinator's shared result
// cache under the local one (read-through on miss, write-back on
// save) — results are byte-identical in every mode:
//
//	sweep -remote http://coordinator:8080 -workloads tomcatv -int-regs 40,48,64
//	sweep -remote-cache http://coordinator:8080 -cache local.json -axis ros=32,0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"earlyrelease/internal/prof"
	"earlyrelease/internal/search"
	"earlyrelease/internal/stats"
	"earlyrelease/internal/sweep"
)

// machineCol summarizes a point's machine-model overrides for the
// result table ("table2" when every axis sits at the baseline).
func machineCol(p sweep.Point) string {
	var parts []string
	for _, ax := range sweep.MachineAxes() {
		if v := ax.Get(p); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", ax.Name, v))
		}
	}
	if len(parts) == 0 {
		return "table2"
	}
	return strings.Join(parts, ",")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		workloadsF = flag.String("workloads", "", "comma-separated workloads (empty = all)")
		policiesF  = flag.String("policies", "", "comma-separated policies: conv,basic,extended (empty = all)")
		intRegsF   = flag.String("int-regs", "", "comma-separated integer file sizes (empty = 48)")
		fpRegsF    = flag.String("fp-regs", "", "comma-separated FP file sizes (empty = mirror int)")
		scale      = flag.Int("scale", sweep.DefaultScale, "dynamic instructions per workload")
		check      = flag.Bool("check", false, "enable invariant checking")
		ablate     = flag.Bool("ablate", false, "also sweep the no-reuse and eager ablations")
		parallel   = flag.Int("parallel", 0, "workers (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "lockstep batch width for points sharing a trace (0 = auto, 1 = scalar)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile after the run to this file")
		cachePath  = flag.String("cache", "", "persistent result cache: a JSON file, or a directory for the segment-log store")
		exportF    = flag.String("export", "", "write the -cache corpus as NDJSON to FILE (\"-\" = stdout) and exit")
		importF    = flag.String("import", "", "merge an NDJSON export from FILE (\"-\" = stdin) into the -cache and exit")
		importOver = flag.Bool("import-overwrite", false, "with -import, replace existing entries instead of skipping them")
		compactF   = flag.Bool("compact", false, "compact the -cache store's stale segments and exit")
		remote     = flag.String("remote", "", "sweepd coordinator URL: submit the grid for federated execution")
		remoteTok  = flag.String("remote-token", "", "tenant API token for -remote submission (sweepd -tokens)")
		remoteC    = flag.String("remote-cache", "", "sweepd coordinator URL: run locally but read-through/write-back its shared cache")
		jsonOut    = flag.Bool("json", false, "print full outcomes as JSON")
		statsPath  = flag.String("stats-json", "", "write run + cache statistics to this file")
		quiet      = flag.Bool("q", false, "suppress progress output")
		listAxes   = flag.Bool("axes", false, "list the machine-model axes and exit")
	)
	axisVals := map[string][]int{}
	flag.Func("axis", "machine-model axis as name=v1,v2,... (repeatable; 0 = Table 2 baseline)",
		func(s string) error {
			name, vals, err := sweep.ParseAxisFlag(s)
			if err != nil {
				return err
			}
			axisVals[name] = append(axisVals[name], vals...)
			return nil
		})
	flag.Parse()

	if *listAxes {
		for _, ax := range sweep.MachineAxes() {
			fmt.Printf("%-10s %s (Table 2: %d; explore default: %v)\n",
				ax.Name, ax.Doc, ax.Baseline, search.DefaultAxisValues(ax))
		}
		return
	}

	intRegs, err := sweep.SplitInts(*intRegsF)
	if err != nil {
		log.Fatal(err)
	}
	fpRegs, err := sweep.SplitInts(*fpRegsF)
	if err != nil {
		log.Fatal(err)
	}
	g := sweep.Grid{
		Workloads: sweep.SplitList(*workloadsF),
		Policies:  sweep.SplitList(*policiesF),
		IntRegs:   intRegs,
		FPRegs:    fpRegs,
		Scale:     *scale,
		Check:     *check,
	}
	if *ablate {
		g.NoReuse = []bool{false, true}
		g.Eager = []bool{false, true}
	}
	for name, vals := range axisVals {
		if err := g.SetAxis(name, vals); err != nil {
			log.Fatal(err)
		}
	}

	// Federated submission runs nothing locally, so a local cache or
	// cache tier would be silently dead weight — reject the combination
	// instead of letting -cache files quietly stop filling.
	if *remote != "" && (*cachePath != "" || *remoteC != "") {
		log.Fatal("-remote submits the grid to the coordinator (which owns the cache); " +
			"it cannot be combined with -cache or -remote-cache")
	}
	eng := &sweep.Engine{Parallel: *parallel, Batch: *batch}
	if *cachePath != "" {
		if eng.Cache, err = sweep.OpenCache(*cachePath); err != nil {
			log.Fatal(err)
		}
	}

	// Cache maintenance verbs operate on the opened cache and exit.
	if *importF != "" || *exportF != "" || *compactF {
		if eng.Cache == nil {
			log.Fatal("-export, -import and -compact need -cache")
		}
		if err := cacheOps(eng.Cache, *exportF, *importF, *importOver, *compactF); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *remoteC != "" {
		if eng.Cache == nil {
			eng.Cache = sweep.NewCache()
		}
		eng.Cache.SetRemote(sweep.NewRemoteCache(*remoteC))
	}

	// Ctrl-C (or a SIGTERM) abandons a federated wait cleanly — the
	// sweep keeps running on the coordinator and a rerun reattaches to
	// its cached results.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := prof.Start(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}

	progress := func(p sweep.Progress) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%d/%d done (%d cached, %d errors)   ",
				p.Done, p.Total, p.CacheHits, p.Errors)
		}
	}
	var res *sweep.Results
	if *remote != "" {
		// Federated execution: the coordinator plans the grid into
		// leased shards and its workers do the simulating.
		res, err = sweep.NewClient(*remote).SetToken(*remoteTok).RunGrid(ctx, g, progress)
	} else {
		res, err = eng.Run(g, progress)
	}
	stopProf()
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if perr := prof.WriteHeap(*memProf); perr != nil {
		log.Fatal(perr)
	}
	if res.SaveErr != "" {
		log.Printf("warning: results below are complete but were not persisted: %s", res.SaveErr)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		// The power columns come from the shared derived-metrics
		// helper (sweep.Derive), the same model the explorer's
		// objectives and the sensitivity driver use.
		t := stats.NewTable("workload", "policy", "int+fp", "machine", "IPC",
			"E/acc (pJ)", "t/acc (ns)", "cycles", "source")
		for _, o := range res.Outcomes {
			src := "run"
			if o.Cached {
				src = "cache"
			}
			if o.Err != "" {
				t.AddRow(o.Point.Workload, o.Point.Policy,
					fmt.Sprintf("%d+%d", o.Point.IntRegs, o.Point.FPRegs),
					machineCol(o.Point), "-", "-", "-", "-", "error: "+o.Err)
				continue
			}
			d := sweep.Derive(o.Point, o.Result)
			t.AddRow(o.Point.Workload, o.Point.Policy,
				fmt.Sprintf("%d+%d", o.Point.IntRegs, o.Point.FPRegs),
				machineCol(o.Point),
				fmt.Sprintf("%.3f", d.IPC),
				fmt.Sprintf("%.0f", d.EnergyPJ),
				fmt.Sprintf("%.2f", d.AccessNs),
				fmt.Sprint(o.Result.Cycles), src)
		}
		fmt.Print(t.String())
	}

	cs := sweep.CacheStats{}
	if eng.Cache != nil {
		cs = eng.Cache.Stats()
		if err := eng.Cache.Close(); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%d points: %d simulated, %d cached, %d errors",
		res.Stats.Points, res.Stats.Simulated, res.Stats.CacheHits, res.Stats.Errors)
	if *statsPath != "" {
		blob, _ := json.MarshalIndent(struct {
			Run   sweep.RunStats   `json:"run"`
			Cache sweep.CacheStats `json:"cache"`
		}{res.Stats, cs}, "", "  ")
		if err := os.WriteFile(*statsPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if res.Stats.Errors > 0 {
		os.Exit(1)
	}
}

// cacheOps runs the maintenance verbs against an opened cache, in
// import → compact → export order so one invocation can seed, shrink,
// and re-dump a corpus in a single pass.
func cacheOps(c *sweep.Cache, exportPath, importPath string, overwrite, compact bool) error {
	if importPath != "" {
		in := os.Stdin
		if importPath != "-" {
			f, err := os.Open(importPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		added, skipped, err := c.Import(in, overwrite)
		if err != nil {
			return err
		}
		log.Printf("imported %d results (%d already present)", added, skipped)
	}
	if compact {
		cs, err := c.Compact(false)
		if err != nil {
			return err
		}
		st := c.Stats()
		log.Printf("compacted %d segments: %d results carried, %d bytes reclaimed",
			cs.Segments, cs.CopiedKey, cs.Reclaimed)
		if st.Store != nil {
			blob, _ := json.Marshal(st.Store)
			log.Printf("store: %s", blob)
		}
	}
	if exportPath != "" {
		out := os.Stdout
		if exportPath != "-" {
			f, err := os.Create(exportPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := c.Export(out); err != nil {
			return err
		}
		if out != os.Stdout {
			if err := out.Sync(); err != nil {
				return err
			}
		}
		log.Printf("exported %d results", c.Len())
	}
	return c.Close()
}
