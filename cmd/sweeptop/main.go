// Command sweeptop is a live terminal dashboard for a sweepd
// coordinator (DESIGN.md §4.9): queue depth, per-worker load and
// throughput, tenant pressure, orchestration latency quantiles
// (computed client-side from the /metrics histogram buckets) and the
// slowest in-flight shards with their trace ids — everything needed to
// answer "why is my sweep slow" before reaching for GET /trace.
//
//	sweeptop -addr http://127.0.0.1:8080            # refresh every 2s
//	sweeptop -addr http://127.0.0.1:8080 -once      # one frame, no clear
//
// It reads only GET /federation and GET /metrics, so it works against
// any sweepd — coordinator or pure coordinator — with zero server-side
// support beyond the standard surfaces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"earlyrelease/internal/obs"
	"earlyrelease/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "coordinator base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
		token    = flag.String("token", "", "API token (empty = anonymous)")
	)
	flag.Parse()

	top := &top{base: strings.TrimRight(*addr, "/"), token: *token,
		hc: &http.Client{Timeout: 10 * time.Second}}

	for {
		frame, err := top.frame()
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "sweeptop: %v\n", err)
				os.Exit(1)
			}
			frame = fmt.Sprintf("sweeptop: %v (retrying)\n", err)
		}
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear + home keeps the frame stable without a curses library.
		fmt.Print("\033[2J\033[H" + frame)
		time.Sleep(*interval)
	}
}

type top struct {
	base  string
	token string
	hc    *http.Client
}

func (t *top) get(path string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, t.base+path, nil)
	if err != nil {
		return nil, err
	}
	if t.token != "" {
		req.Header.Set("Authorization", "Bearer "+t.token)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return body, nil
}

// frame fetches both surfaces and renders one dashboard screen.
func (t *top) frame() (string, error) {
	fedBody, err := t.get("/federation")
	if err != nil {
		return "", err
	}
	var fed sweep.FederationStatus
	if err := json.Unmarshal(fedBody, &fed); err != nil {
		return "", fmt.Errorf("decode /federation: %w", err)
	}
	metBody, err := t.get("/metrics")
	if err != nil {
		return "", err
	}
	m := parseMetrics(string(metBody))

	var b strings.Builder
	fmt.Fprintf(&b, "sweeptop — %s   up %s   %s\n\n",
		t.base, fmtSecs(m.scalar("sweepd_uptime_seconds")), time.Now().Format("15:04:05"))

	fmt.Fprintf(&b, "queue     %d shards / %d points pending   %d leases active   %d workers\n",
		fed.PendingShards, fed.PendingPoints, fed.ActiveLeases, len(fed.Workers))
	fmt.Fprintf(&b, "jobs      %.0f submitted / %.0f done    points %.0f done (%.0f sim, %.0f cached, %.0f failed)\n",
		m.scalar("sweepd_jobs_submitted_total"), m.scalar("sweepd_jobs_done_total"),
		m.scalar("sweepd_points_done_total"), m.scalar("sweepd_points_simulated_total"),
		m.scalar("sweepd_points_cached_total"), m.scalar("sweepd_points_failed_total"))
	fmt.Fprintf(&b, "runtime   %.0f pts/s lifetime   %.0f goroutines   heap %s   gc %.0f cycles\n",
		m.scalar("sweepd_points_simulated_per_sec"), m.scalar("sweepd_goroutines"),
		fmtBytes(m.scalar("sweepd_heap_alloc_bytes")), m.scalar("sweepd_gc_cycles_total"))
	if fed.JournalErr != "" {
		fmt.Fprintf(&b, "JOURNAL DEGRADED: %s\n", fed.JournalErr)
	}

	fmt.Fprintf(&b, "\nlatency              p50        p90        p99      count\n")
	for _, fam := range []struct{ label, name string }{
		{"shard queue wait", "sweepd_shard_queue_wait_seconds"},
		{"shard service", "sweepd_shard_service_seconds"},
		{"point sim", "sweepd_point_sim_seconds"},
		{"lease age", "sweepd_lease_age_seconds"},
		{"http requests", "sweepd_http_request_seconds"},
	} {
		snap := m.hist(fam.name)
		fmt.Fprintf(&b, "  %-16s %9s  %9s  %9s  %9d\n", fam.label,
			fmtSecsShort(snap.Quantile(0.50)), fmtSecsShort(snap.Quantile(0.90)),
			fmtSecsShort(snap.Quantile(0.99)), snap.Count)
	}

	fmt.Fprintf(&b, "\nworkers            active   shards   points   expiries   pts/s\n")
	workers := append([]sweep.WorkerStatus(nil), fed.Workers...)
	sort.Slice(workers, func(i, j int) bool { return workers[i].Name < workers[j].Name })
	for _, wk := range workers {
		fmt.Fprintf(&b, "  %-16s %6d   %6d   %6d   %8d   %5.0f\n",
			wk.Name, wk.ActiveLeases, wk.ShardsDone, wk.PointsDone, wk.Expiries, wk.PointsPerSec)
	}

	if rows := m.tenantRows(); len(rows) > 0 {
		fmt.Fprintf(&b, "\ntenants            pending-pts   running   accepted-pts\n")
		for _, row := range rows {
			fmt.Fprintf(&b, "  %-16s %11.0f   %7.0f   %12.0f\n",
				row.name, row.pending, row.running, row.acceptedPts)
		}
	}

	if len(fed.Leases) > 0 {
		fmt.Fprintf(&b, "\nslowest in-flight shards (age desc)\n")
		fmt.Fprintf(&b, "  shard        worker        att   points      age     left   trace\n")
		for i, ls := range fed.Leases {
			if i >= 8 {
				fmt.Fprintf(&b, "  … %d more\n", len(fed.Leases)-i)
				break
			}
			fmt.Fprintf(&b, "  %-11s  %-12s  %3d   %6d  %7s  %7s   %s\n",
				ls.Shard, ls.Worker, ls.Attempt, ls.Points,
				fmtSecs(float64(ls.AgeMS)/1000), fmtSecs(float64(ls.LeftMS)/1000), ls.Trace)
		}
	}
	return b.String(), nil
}

// --- /metrics text parsing ----------------------------------------------

// metrics indexes one exposition scrape: unlabeled scalars by name,
// and every labeled sample for histogram/tenant reconstruction.
type metrics struct {
	scalars map[string]float64
	samples []sample
}

type sample struct {
	name   string
	labels map[string]string
	value  float64
}

func (m *metrics) scalar(name string) float64 { return m.scalars[name] }

// hist rebuilds a histogram family as an obs.HistSnapshot, summing
// across label sets (the per-route HTTP family collapses to one
// overall distribution; single-series families pass through).
func (m *metrics) hist(name string) obs.HistSnapshot {
	type bucket struct {
		le  float64
		sum float64
	}
	var buckets []bucket
	idx := map[float64]int{}
	var snap obs.HistSnapshot
	for _, s := range m.samples {
		switch s.name {
		case name + "_bucket":
			le, err := parseLe(s.labels["le"])
			if err != nil {
				continue
			}
			i, ok := idx[le]
			if !ok {
				i = len(buckets)
				idx[le] = i
				buckets = append(buckets, bucket{le: le})
			}
			buckets[i].sum += s.value
		case name + "_sum":
			snap.Sum += s.value
		case name + "_count":
			snap.Count += uint64(s.value)
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for _, bk := range buckets {
		if bk.le == infLe {
			snap.Counts = append(snap.Counts, uint64(bk.sum))
			continue
		}
		snap.Bounds = append(snap.Bounds, bk.le)
		snap.Counts = append(snap.Counts, uint64(bk.sum))
	}
	return snap
}

// infLe stands in for +Inf so the bucket map stays keyed on float64.
const infLe = 1e308

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return infLe, nil
	}
	return strconv.ParseFloat(s, 64)
}

type tenantRow struct {
	name                          string
	pending, running, acceptedPts float64
}

func (m *metrics) tenantRows() []tenantRow {
	rows := map[string]*tenantRow{}
	pick := func(name string) *tenantRow {
		row, ok := rows[name]
		if !ok {
			row = &tenantRow{name: name}
			rows[name] = row
		}
		return row
	}
	for _, s := range m.samples {
		tn := s.labels["tenant"]
		if tn == "" {
			continue
		}
		switch s.name {
		case "sweepd_tenant_pending_points":
			pick(tn).pending = s.value
		case "sweepd_tenant_running_jobs":
			pick(tn).running = s.value
		case "sweepd_tenant_accepted_points_total":
			pick(tn).acceptedPts = s.value
		}
	}
	out := make([]tenantRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// parseMetrics reads Prometheus text exposition: "name value" and
// "name{k="v",...} value" lines; comments and anything unparsable are
// skipped.
func parseMetrics(text string) *metrics {
	m := &metrics{scalars: map[string]float64{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		var labelPart string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue
			}
			labelPart = line[i+1 : j]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		if labelPart == "" {
			m.scalars[name] = v
			continue
		}
		m.samples = append(m.samples, sample{name: name, labels: parseLabels(labelPart), value: v})
	}
	return m
}

// parseLabels splits `k="v",k2="v2"` honoring the exposition escapes.
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			break
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out
}

// --- formatting ---------------------------------------------------------

func fmtSecs(s float64) string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// fmtSecsShort renders a latency with sub-second resolution.
func fmtSecsShort(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
