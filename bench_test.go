package earlyrelease

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §4 maps each benchmark to its artifact).
// Each benchmark reports the reproduced headline metrics through
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record:
//
//	BenchmarkFig3    — register-state breakdown (idle overhead %)
//	BenchmarkSec33   — basic-mechanism speedups at 64/48/40 registers
//	BenchmarkFig9    — access time / energy model evaluation
//	BenchmarkSec44   — energy balance of shrunken files + LUs Tables
//	BenchmarkFig10   — per-benchmark IPC at 48+48 under three policies
//	BenchmarkFig11   — Hm IPC vs register file size (+ Table 4 savings)
//	BenchmarkPolicy* — per-policy microbenchmarks on single workloads
//	Benchmark_Ablation* — design-choice ablations (§3.2 reuse, RelQue
//	  depth, eager release)
//
// The heavyweight sweeps use a reduced scale so a full -bench=. pass
// completes in minutes; run cmd/figures for full-fidelity numbers.

import (
	"testing"

	"earlyrelease/internal/experiments"
	"earlyrelease/internal/pipeline"
	"earlyrelease/internal/power"
	"earlyrelease/internal/release"
	"earlyrelease/internal/workloads"
)

func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Scale = 60_000
	return o
}

// BenchmarkFig3 regenerates Figure 3 (Empty/Ready/Idle breakdown under
// conventional renaming, 96+96 registers).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		im, fm := res.IdleOverheadMeans()
		b.ReportMetric(100*im, "idle/used-int-%")
		b.ReportMetric(100*fm, "idle/used-fp-%")
	}
}

// BenchmarkSec33 regenerates the §3.3 basic-mechanism speedups.
func BenchmarkSec33(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec33(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FPSp[1], "fp-speedup-48-%")
		b.ReportMetric(100*res.IntSp[2], "int-speedup-40-%")
	}
}

// BenchmarkFig9 evaluates the register-file delay/energy model across
// the paper's size axis.
func BenchmarkFig9(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.DefaultSizes {
			tn, e := power.IntFile(p)
			sink += tn + e
			tn, e = power.FPFile(p)
			sink += tn + e
		}
	}
	lt, le := power.LUsTable()
	b.ReportMetric(lt, "LUsTable-ns")
	b.ReportMetric(le, "LUsTable-pJ")
	_ = sink
}

// BenchmarkSec44 evaluates the §4.4 energy balance.
func BenchmarkSec44(b *testing.B) {
	var econv, eearly float64
	for i := 0; i < b.N; i++ {
		econv, eearly = power.EnergyBalance(64, 79, 56, 72)
	}
	b.ReportMetric(econv, "Econv-pJ")
	b.ReportMetric(eearly, "Eearly-pJ")
}

// BenchmarkFig10 regenerates the 48+48 three-policy comparison.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		iSp, fpSp := res.Speedups(release.Extended)
		b.ReportMetric(100*iSp, "ext-int-speedup-%")
		b.ReportMetric(100*fpSp, "ext-fp-speedup-%")
	}
}

// BenchmarkFig11 regenerates the register-size sweep and derives the
// Table 4 equal-IPC savings.
func BenchmarkFig11(b *testing.B) {
	sizes := []int{40, 48, 56, 64, 80, 96, 128, 160}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table4(res)
		var maxInt, maxFP float64
		for _, r := range rows {
			if r.Class == workloads.Int && r.SavedPct > maxInt {
				maxInt = r.SavedPct
			}
			if r.Class == workloads.FP && r.SavedPct > maxFP {
				maxFP = r.SavedPct
			}
		}
		b.ReportMetric(maxInt, "table4-int-saved-%")
		b.ReportMetric(maxFP, "table4-fp-saved-%")
	}
}

// benchPolicy measures simulator throughput and reproduced IPC for one
// (workload, policy) pair.
func benchPolicy(b *testing.B, workload string, kind release.Kind, regs int) {
	w, err := workloads.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOpts()
	tr := w.MustTrace(opt.Scale)
	b.SetBytes(int64(tr.Len())) // "bytes" = simulated instructions
	b.ResetTimer()
	var ipc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(w, kind, regs, regs, opt)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC
	}
	b.ReportMetric(ipc, "sim-IPC")
}

func BenchmarkPolicyConvTomcatv(b *testing.B)     { benchPolicy(b, "tomcatv", release.Conventional, 48) }
func BenchmarkPolicyBasicTomcatv(b *testing.B)    { benchPolicy(b, "tomcatv", release.Basic, 48) }
func BenchmarkPolicyExtendedTomcatv(b *testing.B) { benchPolicy(b, "tomcatv", release.Extended, 48) }
func BenchmarkPolicyConvGo(b *testing.B)          { benchPolicy(b, "go", release.Conventional, 40) }
func BenchmarkPolicyExtendedGo(b *testing.B)      { benchPolicy(b, "go", release.Extended, 40) }

// Benchmark_AblationReuse quantifies the §3.2 register-reuse option: the
// extended policy with and without in-place reuse of committed versions.
func Benchmark_AblationReuse(b *testing.B) {
	w, _ := workloads.ByName("swim")
	opt := benchOpts()
	tr := w.MustTrace(opt.Scale) // prebuild so trace emulation is untimed
	b.SetBytes(2 * int64(tr.Len()))
	b.ResetTimer()
	run := func(reuse bool) float64 {
		rep, err := Run("swim", Config{
			Policy: PolicyExtended, IntRegs: 48, FPRegs: 48,
			Scale: opt.Scale, NoReuse: !reuse,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep.IPC
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "IPC-reuse")
	b.ReportMetric(without, "IPC-noreuse")
}

// Benchmark_AblationEager measures the Farkas/Moudgill-style eager
// release (imprecise-exception ablation, §6) against the precise basic
// mechanism.
func Benchmark_AblationEager(b *testing.B) {
	w, _ := workloads.ByName("tomcatv")
	opt := benchOpts()
	tr := w.MustTrace(opt.Scale) // prebuild so trace emulation is untimed
	b.SetBytes(2 * int64(tr.Len()))
	b.ResetTimer()
	var precise, eager float64
	for i := 0; i < b.N; i++ {
		rep, err := Run("tomcatv", Config{Policy: PolicyBasic, IntRegs: 48, FPRegs: 48, Scale: opt.Scale})
		if err != nil {
			b.Fatal(err)
		}
		precise = rep.IPC
		rep, err = Run("tomcatv", Config{Policy: PolicyBasic, IntRegs: 48, FPRegs: 48, Scale: opt.Scale, Eager: true})
		if err != nil {
			b.Fatal(err)
		}
		eager = rep.IPC
	}
	b.ReportMetric(precise, "IPC-precise")
	b.ReportMetric(eager, "IPC-eager")
}

// Benchmark_AblationRelQueDepth sweeps the pending-branch limit (the
// Release Queue depth) to show the extended mechanism's sensitivity to
// its one sizing parameter.
func Benchmark_AblationRelQueDepth(b *testing.B) {
	w, _ := workloads.ByName("go")
	opt := benchOpts()
	tr := w.MustTrace(opt.Scale) // prebuild so trace emulation is untimed
	depths := []int{4, 8, 20}
	ipcs := make([]float64, len(depths))
	b.SetBytes(int64(len(depths)) * int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d, depth := range depths {
			cfg := pipeline.DefaultConfig(release.Extended, 48, 48)
			cfg.Policy.MaxPendingBranches = depth
			core, err := pipeline.New(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Run()
			if err != nil {
				b.Fatal(err)
			}
			ipcs[d] = res.IPC
		}
	}
	b.ReportMetric(ipcs[0], "IPC-depth4")
	b.ReportMetric(ipcs[1], "IPC-depth8")
	b.ReportMetric(ipcs[2], "IPC-depth20")
}
